// Command monestd serves monotone-sampling estimates from live streaming
// sketches: a daemon wrapping internal/engine (sharded coordinated
// bottom-k store) with the internal/server JSON API and, when -data-dir
// is set, the internal/store durability layer (write-ahead log + sketch
// checkpoints + crash recovery).
//
// Usage:
//
//	monestd [-addr :8080] [-instances 2] [-k 64] [-shards 16] [-salt 1]
//	        [-default-estimator lstar] [-estimators lstar,ustar,ht,...]
//	        [-snapshot-max-stale 0s]
//	        [-subscribe-debounce 100ms] [-subscribe-heartbeat 15s]
//	        [-data-dir DIR] [-fsync always|interval|never]
//	        [-checkpoint-interval 1m] [-pprof]
//	        [-cluster url1,url2] [-cluster-read strict|partial|quorum=N]
//	        [-ingest-rate 0] [-ingest-burst 0] [-ingest-inflight 0]
//
// -default-estimator names the registry estimator used when a request
// does not name one; -estimators is an optional comma-separated allowlist
// of registry base names (empty = every registered estimator servable).
// -snapshot-max-stale bounds how old a cached sketch snapshot may be
// served while writes keep arriving (e.g. 250ms): reads then reuse the
// last reduced snapshot within the bound instead of re-reducing per
// request. 0 (the default) serves every read from an exact cut — which
// still costs nothing when no ingest intervened, thanks to the engine's
// versioned snapshot cache.
//
// Streaming wire: POST /v1/stream accepts length-prefixed binary update
// frames (WAL record format behind an 8-byte magic) over one chunked
// connection, and GET /v1/subscribe pushes re-estimates as Server-Sent
// Events whenever the sketch state changes. -subscribe-debounce is the
// window that coalesces write bursts into one push; -subscribe-heartbeat
// is the SSE keepalive comment period. On graceful shutdown subscribers
// receive a final "drain" event before the listener closes.
//
// Durability: -data-dir points at a state directory (or a "backend:path"
// store spec, e.g. "file:/var/lib/monestd"); on boot the daemon recovers
// the latest checkpoint plus the WAL tail, and every accepted ingest is
// then journaled ahead of being applied. -fsync picks the WAL flush
// policy (always = durable per batch; interval = background flush;
// never = leave it to the OS). -checkpoint-interval writes periodic
// compact checkpoints (0 disables; /v1/checkpoint triggers one on
// demand); a final checkpoint is always written on graceful shutdown.
// Without -data-dir the daemon is in-memory only, as before.
//
// Cluster mode: -cluster=url1,url2,... turns the process into a
// coordinator over N monestd nodes sharing the same -salt/-instances/-k.
// Reads scatter-gather the nodes' binary sketch states (GET /v1/sketch
// with per-node version-vector caching — unchanged nodes answer 304 and
// transfer nothing), fold them losslessly into a local merge engine, and
// serve the full /v1/query//v1/subscribe surface from the merged
// snapshot, bit-identical to a single node fed the union stream. Writes
// to the coordinator's /v1/ingest and /v1/stream forward synchronously to
// the consistent-hash ring owners. -cluster-read picks the read policy
// for member-node failures: strict (the default) answers 503 when any
// node is unreachable instead of silently under-counting; partial serves
// the merged view of whatever nodes answered; quorum=<n> serves when at
// least n nodes answered. Under partial/quorum, every snapshot-backed
// response carries a "degraded" block naming the missing nodes and how
// stale their last-merged contribution is — estimates stay well-defined
// lower bounds over the reachable subset. Dead nodes are cheap: node
// requests retry with capped exponential backoff + full jitter behind a
// per-node circuit breaker, so an unreachable node short-circuits
// instead of costing a timeout per sync. -cluster-poll keeps
// subscriptions live without query traffic; -cluster-sync-max-stale
// bounds sync frequency under read load; -data-dir is rejected (nodes
// own durability — the coordinator rebuilds from them on the next sync).
//
// Backpressure: -ingest-rate caps each client IP's sustained ingest
// throughput in updates/sec (-ingest-burst sets the bucket size) and
// -ingest-inflight bounds concurrent ingest requests + open streams.
// Refused work answers a structured 429 with Retry-After; a refused
// stream frame reports applied progress so clients resume exactly.
//
// GET /healthz is liveness (process up — always 200); GET /readyz is
// readiness (coordinator: the read policy is currently satisfiable;
// node: store attached and recovery complete before the listener opens).
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same listener.
//
// Example session:
//
//	monestd -addr :8080 -instances 2 -k 256 -data-dir /var/lib/monestd &
//	curl -X POST localhost:8080/v1/ingest -d \
//	  '{"updates":[{"instance":0,"key":"alpha","weight":0.9}]}'
//	curl 'localhost:8080/v1/estimate/sum?func=rg&p=1&estimator=lstar'
//	curl -X POST localhost:8080/v1/checkpoint
//	curl -o sketch.bin localhost:8080/v1/export
//	curl localhost:8080/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain, the WAL is flushed, and a final checkpoint is written so the
// next boot replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/store"
)

// options carries every flag; run takes it whole so tests drive the full
// daemon without a command line.
type options struct {
	addr       string
	instances  int
	k          int
	shards     int
	salt       uint64
	defaultEst string
	allow      string
	maxStale   time.Duration

	subDebounce  time.Duration
	subHeartbeat time.Duration

	dataDir      string
	fsync        string
	checkpointIv time.Duration
	pprof        bool

	cluster        string
	clusterVNodes  int
	clusterTimeout time.Duration
	clusterPoll    time.Duration
	clusterStale   time.Duration
	clusterRead    string

	ingestRate     float64
	ingestBurst    float64
	ingestInflight int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.instances, "instances", 2, "number of coordinated instances")
	flag.IntVar(&o.k, "k", 64, "bottom-k sketch size per instance")
	flag.IntVar(&o.shards, "shards", 16, "lock-striped shard count")
	flag.Uint64Var(&o.salt, "salt", 1, "seed-hash salt (writers sharing it stay coordinated)")
	flag.StringVar(&o.defaultEst, "default-estimator", "lstar", "registry estimator used when a request names none")
	flag.StringVar(&o.allow, "estimators", "", "comma-separated allowlist of estimator base names (empty = all registered)")
	flag.DurationVar(&o.maxStale, "snapshot-max-stale", 0, "serve cached snapshots up to this old under write load (0 = always exact)")
	flag.DurationVar(&o.subDebounce, "subscribe-debounce", 100*time.Millisecond, "window coalescing write bursts into one /v1/subscribe push")
	flag.DurationVar(&o.subHeartbeat, "subscribe-heartbeat", 15*time.Second, "SSE keepalive comment period on /v1/subscribe")
	flag.StringVar(&o.dataDir, "data-dir", "", "state directory or backend:path store spec (empty = in-memory only)")
	flag.StringVar(&o.fsync, "fsync", "interval", "WAL flush policy: always, interval, never")
	flag.DurationVar(&o.checkpointIv, "checkpoint-interval", time.Minute, "periodic checkpoint period (0 = only on demand and shutdown)")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.cluster, "cluster", "", "comma-separated node base URLs; when set, serve as cluster coordinator")
	flag.IntVar(&o.clusterVNodes, "cluster-vnodes", 0, "virtual nodes per cluster member (0 = default 64)")
	flag.DurationVar(&o.clusterTimeout, "cluster-timeout", 2*time.Second, "per-node request timeout in cluster mode")
	flag.DurationVar(&o.clusterPoll, "cluster-poll", 200*time.Millisecond, "background node-sync period driving /v1/subscribe pushes (0 = query-driven only)")
	flag.DurationVar(&o.clusterStale, "cluster-sync-max-stale", 0, "skip node re-sync when the last one is at most this old (0 = sync per read)")
	flag.StringVar(&o.clusterRead, "cluster-read", "strict", "cluster read policy: strict, partial, or quorum=<n>")
	flag.Float64Var(&o.ingestRate, "ingest-rate", 0, "per-client ingest rate limit in updates/sec (0 = unlimited)")
	flag.Float64Var(&o.ingestBurst, "ingest-burst", 0, "token-bucket burst for -ingest-rate (0 = same as rate)")
	flag.IntVar(&o.ingestInflight, "ingest-inflight", 0, "max concurrent ingest requests + open streams (0 = unlimited)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "monestd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.maxStale < 0 {
		return fmt.Errorf("-snapshot-max-stale %v must be nonnegative", o.maxStale)
	}
	if o.checkpointIv < 0 {
		return fmt.Errorf("-checkpoint-interval %v must be nonnegative", o.checkpointIv)
	}
	if o.subDebounce < 0 || o.subHeartbeat < 0 {
		return errors.New("-subscribe-debounce and -subscribe-heartbeat must be nonnegative")
	}
	fsyncPolicy, err := store.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return err
	}
	engCfg := engine.Config{
		Instances: o.instances,
		K:         o.k,
		Shards:    o.shards,
		Hash:      sampling.NewSeedHash(o.salt),
	}

	// Cluster mode: this process becomes a coordinator — the engine it
	// serves is the coordinator's merge engine, reads scatter-gather the
	// member nodes' binary sketches, and ingest routes to ring owners. The
	// coordinator is deliberately stateless (its contents rebuild from the
	// nodes on the next sync), so -data-dir belongs on the nodes, not here.
	readPolicy, err := cluster.ParseReadPolicy(o.clusterRead)
	if err != nil {
		return fmt.Errorf("-cluster-read: %w", err)
	}
	if readPolicy.Mode != cluster.ReadStrict && o.cluster == "" {
		return fmt.Errorf("-cluster-read %s requires -cluster (a single node has no partial view to serve)", readPolicy)
	}
	var coord *cluster.Coordinator
	if o.cluster != "" {
		if o.dataDir != "" {
			return errors.New("-data-dir cannot be combined with -cluster (durability lives on the nodes; the coordinator rebuilds from them)")
		}
		var nodes []string
		for _, n := range strings.Split(o.cluster, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, strings.TrimSuffix(n, "/"))
			}
		}
		coord, err = cluster.New(cluster.Config{
			Nodes:        nodes,
			VirtualNodes: o.clusterVNodes,
			Engine:       engCfg,
			Timeout:      o.clusterTimeout,
			Poll:         o.clusterPoll,
			SyncMaxStale: o.clusterStale,
			ReadPolicy:   readPolicy,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
	}

	var eng *engine.Engine
	if coord != nil {
		eng = coord.Engine()
	} else if eng, err = engine.New(engCfg); err != nil {
		return err
	}
	reg := estreg.Default()
	if o.allow != "" {
		var names []string
		for _, n := range strings.Split(o.allow, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			// A blank-but-set allowlist is an operator mistake; clearing
			// the restriction here would serve everything they meant to
			// lock down.
			return fmt.Errorf("-estimators %q names no estimators", o.allow)
		}
		if err := reg.Allow(names); err != nil {
			return err
		}
	}
	// Fail at startup, not per request, when the default estimator does
	// not resolve (rg is arity-0, so it probes any instance count).
	probe, err := funcs.NewRG(1)
	if err != nil {
		return err
	}
	if _, _, err := reg.Build(o.defaultEst, probe, o.instances); err != nil {
		return fmt.Errorf("default estimator: %w", err)
	}
	logger := log.New(os.Stderr, "monestd: ", log.LstdFlags)

	// Durability: recover before the listener exists (the engine must not
	// see traffic until the journal is attached), then checkpoint on a
	// timer and finally on shutdown.
	var persist *store.Persistence
	if o.dataDir != "" {
		st, err := store.Open(o.dataDir, store.Options{Fsync: fsyncPolicy})
		if err != nil {
			return err
		}
		p, rec, err := store.Attach(eng, st)
		if err != nil {
			st.Close()
			return fmt.Errorf("recovering %s: %w", o.dataDir, err)
		}
		persist = p
		msg := fmt.Sprintf("recovered %s: checkpoint seq=%d version=%d, replayed %d records (%d updates)",
			o.dataDir, rec.CheckpointSeq, rec.CheckpointVersion, rec.Records, rec.Updates)
		if rec.Truncated {
			msg += ", WAL truncated at first corrupt record"
		}
		if rec.CheckpointsSkipped > 0 {
			msg += fmt.Sprintf(", %d corrupt checkpoint(s) skipped", rec.CheckpointsSkipped)
		}
		logger.Print(msg)
		// Compact a non-trivial replay right away: the boot we just paid
		// for becomes a checkpoint instead of being paid again next time.
		if rec.Records > 0 {
			if cs, err := p.Checkpoint(); err != nil {
				logger.Printf("post-recovery checkpoint failed: %v", err)
			} else {
				logger.Printf("post-recovery checkpoint seq=%d (%d keys, %d bytes)", cs.Seq, cs.Keys, cs.Bytes)
			}
		}
	}

	srvCfg := server.Config{
		Registry:           reg,
		DefaultEstimator:   o.defaultEst,
		SnapshotMaxStale:   o.maxStale,
		Persist:            persist,
		SubscribeDebounce:  o.subDebounce,
		SubscribeHeartbeat: o.subHeartbeat,
		IngestRate:         o.ingestRate,
		IngestBurst:        o.ingestBurst,
		IngestInflight:     o.ingestInflight,
	}
	if coord != nil {
		srvCfg.Snapshots = coord
		srvCfg.Ingest = coord
		srvCfg.Cluster = coord
		// Readiness on a coordinator means the read policy is satisfiable
		// right now. A node needs no probe: recovery completes before the
		// listener opens, so a node answering /readyz at all is ready.
		srvCfg.Ready = coord.Ready
	}
	api := server.NewWith(eng, srvCfg)
	var handler http.Handler = api
	if o.pprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if persist != nil && o.checkpointIv > 0 {
		go func() {
			t := time.NewTicker(o.checkpointIv)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if cs, err := persist.Checkpoint(); err != nil {
						logger.Printf("periodic checkpoint failed: %v", err)
					} else if cs.WALRecordsDropped > 0 || cs.Keys > 0 {
						logger.Printf("checkpoint seq=%d version=%d keys=%d bytes=%d wal-records-dropped=%d",
							cs.Seq, cs.Version, cs.Keys, cs.Bytes, cs.WALRecordsDropped)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if coord != nil {
			logger.Printf("listening on %s as cluster coordinator over %d nodes %v (instances=%d k=%d salt=%d poll=%v timeout=%v)",
				o.addr, len(coord.Ring().Nodes()), coord.Ring().Nodes(), o.instances, o.k, o.salt, o.clusterPoll, o.clusterTimeout)
		} else {
			logger.Printf("listening on %s (instances=%d k=%d shards=%d salt=%d snapshot-max-stale=%v data-dir=%q fsync=%v)",
				o.addr, o.instances, o.k, o.shards, o.salt, o.maxStale, o.dataDir, fsyncPolicy)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if persist != nil {
			persist.Close()
		}
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	// Drain first: open ingest streams stop accepting frames at the next
	// boundary and subscribers get a final "drain" event, so Shutdown's
	// wait for in-flight requests actually terminates (SSE connections
	// would otherwise hold it open until the timeout).
	api.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Requests are drained: flush the WAL and write the final checkpoint
	// so the next boot restores it and replays nothing.
	if persist != nil {
		if err := persist.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		logger.Printf("final checkpoint written")
	}
	st := eng.Stats()
	logger.Printf("stopped: %d keys, %d ingests served", st.Keys, st.Ingests)
	return nil
}
