// Command monestd serves monotone-sampling estimates from live streaming
// sketches: a daemon wrapping internal/engine (sharded coordinated
// bottom-k store) with the internal/server JSON API.
//
// Usage:
//
//	monestd [-addr :8080] [-instances 2] [-k 64] [-shards 16] [-salt 1]
//	        [-default-estimator lstar] [-estimators lstar,ustar,ht,...]
//	        [-snapshot-max-stale 0s]
//
// -default-estimator names the registry estimator used when a request
// does not name one; -estimators is an optional comma-separated allowlist
// of registry base names (empty = every registered estimator servable).
// -snapshot-max-stale bounds how old a cached sketch snapshot may be
// served while writes keep arriving (e.g. 250ms): reads then reuse the
// last reduced snapshot within the bound instead of re-reducing per
// request. 0 (the default) serves every read from an exact cut — which
// still costs nothing when no ingest intervened, thanks to the engine's
// versioned snapshot cache.
//
// Example session:
//
//	monestd -addr :8080 -instances 2 -k 256 &
//	curl -X POST localhost:8080/v1/ingest -d \
//	  '{"updates":[{"instance":0,"key":"alpha","weight":0.9}]}'
//	curl 'localhost:8080/v1/estimate/sum?func=rg&p=1&estimator=lstar'
//	curl -X POST localhost:8080/v1/query -d '{"queries":[
//	  {"func":"rg","p":1,"estimator":"ustar"},
//	  {"statistic":"jaccard"}]}'
//	curl localhost:8080/v1/estimate/jaccard
//	curl localhost:8080/v1/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	instances := flag.Int("instances", 2, "number of coordinated instances")
	k := flag.Int("k", 64, "bottom-k sketch size per instance")
	shards := flag.Int("shards", 16, "lock-striped shard count")
	salt := flag.Uint64("salt", 1, "seed-hash salt (writers sharing it stay coordinated)")
	defaultEst := flag.String("default-estimator", "lstar", "registry estimator used when a request names none")
	allow := flag.String("estimators", "", "comma-separated allowlist of estimator base names (empty = all registered)")
	maxStale := flag.Duration("snapshot-max-stale", 0, "serve cached snapshots up to this old under write load (0 = always exact)")
	flag.Parse()

	if err := run(*addr, *instances, *k, *shards, *salt, *defaultEst, *allow, *maxStale); err != nil {
		fmt.Fprintln(os.Stderr, "monestd:", err)
		os.Exit(1)
	}
}

func run(addr string, instances, k, shards int, salt uint64, defaultEst, allow string, maxStale time.Duration) error {
	if maxStale < 0 {
		return fmt.Errorf("-snapshot-max-stale %v must be nonnegative", maxStale)
	}
	eng, err := engine.New(engine.Config{
		Instances: instances,
		K:         k,
		Shards:    shards,
		Hash:      sampling.NewSeedHash(salt),
	})
	if err != nil {
		return err
	}
	reg := estreg.Default()
	if allow != "" {
		var names []string
		for _, n := range strings.Split(allow, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			// A blank-but-set allowlist is an operator mistake; clearing
			// the restriction here would serve everything they meant to
			// lock down.
			return fmt.Errorf("-estimators %q names no estimators", allow)
		}
		if err := reg.Allow(names); err != nil {
			return err
		}
	}
	// Fail at startup, not per request, when the default estimator does
	// not resolve (rg is arity-0, so it probes any instance count).
	probe, err := funcs.NewRG(1)
	if err != nil {
		return err
	}
	if _, _, err := reg.Build(defaultEst, probe, instances); err != nil {
		return fmt.Errorf("default estimator: %w", err)
	}
	logger := log.New(os.Stderr, "monestd: ", log.LstdFlags)
	srv := &http.Server{
		Addr: addr,
		Handler: server.NewWith(eng, server.Config{
			Registry:         reg,
			DefaultEstimator: defaultEst,
			SnapshotMaxStale: maxStale,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (instances=%d k=%d shards=%d salt=%d snapshot-max-stale=%v)",
			addr, instances, k, shards, salt, maxStale)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := eng.Stats()
	logger.Printf("stopped: %d keys, %d ingests served", st.Keys, st.Ingests)
	return nil
}
