package main

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves a loopback port for the daemon under test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestRunServesAndShutsDownGracefully(t *testing.T) {
	addr := freeAddr(t)
	done := make(chan error, 1)
	go func() { done <- run(addr, 2, 8, 4, 1, "lstar", "", 50*time.Millisecond) }()

	// Wait for the listener, then exercise one ingest + one estimate.
	url := "http://" + addr
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v", err)
	}
	resp.Body.Close()

	body := `{"updates":[{"instance":0,"key":"alpha","weight":0.9},{"instance":1,"key":"alpha","weight":0.5}]}`
	resp, err = http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(url + "/v1/estimate/sum?func=max")
	if err != nil {
		t.Fatal(err)
	}
	var est map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := est["estimate"].(float64); !ok {
		t.Fatalf("estimate body %v", est)
	}

	// SIGTERM must drain and exit cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run("127.0.0.1:0", 0, 8, 4, 1, "lstar", "", 0); err == nil {
		t.Error("zero instances should fail")
	}
	if err := run("127.0.0.1:0", 2, 0, 4, 1, "lstar", "", 0); err == nil {
		t.Error("zero k should fail")
	}
	if err := run("127.0.0.1:0", 2, 8, 4, 1, "nope", "", 0); err == nil {
		t.Error("unknown default estimator should fail")
	}
	if err := run("127.0.0.1:0", 2, 8, 4, 1, "lstar", "lstar,bogus", 0); err == nil {
		t.Error("unknown allowlist entry should fail")
	}
	if err := run("127.0.0.1:0", 2, 8, 4, 1, "ustar", "lstar,ht", 0); err == nil {
		t.Error("default estimator outside the allowlist should fail")
	}
	if err := run("127.0.0.1:0", 2, 8, 4, 1, "lstar", " , ", 0); err == nil {
		t.Error("blank-but-set allowlist should fail, not clear the restriction")
	}
	if err := run("127.0.0.1:0", 2, 8, 4, 1, "lstar", "", -time.Second); err == nil {
		t.Error("negative snapshot-max-stale should fail")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := run(l.Addr().String(), 2, 8, 4, 1, "lstar", "", 0); err == nil {
		t.Error("busy address should fail")
	}
}
