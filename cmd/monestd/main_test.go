package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves a loopback port for the daemon under test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func baseOpts(addr string) options {
	return options{
		addr:       addr,
		instances:  2,
		k:          8,
		shards:     4,
		salt:       1,
		defaultEst: "lstar",
		maxStale:   50 * time.Millisecond,
		fsync:      "interval",
	}
}

// startDaemon runs the daemon until stop() is called; stop SIGTERMs the
// process (run installs a per-call signal context) and waits for a clean
// exit.
func startDaemon(t *testing.T, o options) (url string, stop func()) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- run(o) }()
	url = "http://" + o.addr
	var err error
	for i := 0; i < 100; i++ {
		var resp *http.Response
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v", err)
	}
	return url, func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not shut down after SIGTERM")
		}
	}
}

func TestRunServesAndShutsDownGracefully(t *testing.T) {
	url, stop := startDaemon(t, baseOpts(freeAddr(t)))

	body := `{"updates":[{"instance":0,"key":"alpha","weight":0.9},{"instance":1,"key":"alpha","weight":0.5}]}`
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(url + "/v1/estimate/sum?func=max")
	if err != nil {
		t.Fatal(err)
	}
	var est map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := est["estimate"].(float64); !ok {
		t.Fatalf("estimate body %v", est)
	}

	// SIGTERM must drain and exit cleanly.
	stop()
}

// export fetches the binary state artifact, which is deterministic for
// equal states — byte equality below means the sketch survived intact.
func export(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestKillAndRestartRecoversState is the acceptance test for the durable
// engine: ingest over HTTP, SIGTERM the daemon, boot a fresh one on the
// same data dir, and require the recovered /v1/export bytes to match the
// pre-shutdown ones exactly.
func TestKillAndRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	o := baseOpts(freeAddr(t))
	o.dataDir = dir
	o.checkpointIv = time.Hour // only the shutdown checkpoint
	url, stop := startDaemon(t, o)

	body := `{"updates":[
		{"instance":0,"key":"alpha","weight":0.9},{"instance":1,"key":"alpha","weight":0.5},
		{"instance":0,"key":"beta","weight":2.25},{"instance":1,"key":"gamma","weight":1.5}]}`
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	want := export(t, url)
	stop()

	o2 := baseOpts(freeAddr(t))
	o2.dataDir = dir
	url2, stop2 := startDaemon(t, o2)
	defer stop2()
	if got := export(t, url2); !bytes.Equal(got, want) {
		t.Fatalf("recovered export differs: %d bytes vs %d bytes pre-shutdown", len(got), len(want))
	}

	// The restarted daemon keeps serving: checkpoint on demand works.
	resp, err = http.Post(url2+"/v1/checkpoint", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPprofFlagMountsProfiles(t *testing.T) {
	o := baseOpts(freeAddr(t))
	o.pprof = true
	url, stop := startDaemon(t, o)
	defer stop()

	resp, err := http.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	// The API still routes beneath the pprof mux.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind pprof mux: %d", resp.StatusCode)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	mod := func(f func(*options)) options {
		o := baseOpts("127.0.0.1:0")
		o.maxStale = 0
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
	}{
		{"zero instances", mod(func(o *options) { o.instances = 0 })},
		{"zero k", mod(func(o *options) { o.k = 0 })},
		{"unknown default estimator", mod(func(o *options) { o.defaultEst = "nope" })},
		{"unknown allowlist entry", mod(func(o *options) { o.allow = "lstar,bogus" })},
		{"default estimator outside allowlist", mod(func(o *options) { o.defaultEst = "ustar"; o.allow = "lstar,ht" })},
		{"blank-but-set allowlist", mod(func(o *options) { o.allow = " , " })},
		{"negative snapshot-max-stale", mod(func(o *options) { o.maxStale = -time.Second })},
		{"negative checkpoint interval", mod(func(o *options) { o.checkpointIv = -time.Second })},
		{"bad fsync policy", mod(func(o *options) { o.fsync = "sometimes" })},
		{"unknown store backend", mod(func(o *options) { o.dataDir = "bogus:/tmp/x" })},
	}
	for _, tc := range cases {
		if err := run(tc.o); err == nil {
			t.Errorf("%s should fail", tc.name)
		}
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := baseOpts(l.Addr().String())
	o.maxStale = 0
	if err := run(o); err == nil {
		t.Error("busy address should fail")
	}
}
