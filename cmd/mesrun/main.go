// Command mesrun runs the paper-reproduction experiments and prints their
// tables; figures are summarized (use mesfig for full series CSV).
//
// Usage:
//
//	mesrun [-quick] [-seed N] [-csv DIR] [ID ...]
//
// With no IDs, every experiment in DESIGN.md's index runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	seed := flag.Int64("seed", 1, "randomness seed")
	csvDir := flag.String("csv", "", "also write tables as CSV under this directory")
	flag.Parse()

	if err := run(*quick, *seed, *csvDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mesrun:", err)
		os.Exit(1)
	}
}

func run(quick bool, seed int64, csvDir string, ids []string) error {
	cfg := experiments.Config{Quick: quick, Seed: seed}
	var list []experiments.Experiment
	if len(ids) == 0 {
		list = experiments.All()
	} else {
		for _, id := range ids {
			e, err := experiments.ByID(strings.ToUpper(id))
			if err != nil {
				return err
			}
			list = append(list, e)
		}
	}
	for _, e := range list {
		fmt.Printf("--- %s: %s\n", e.ID, e.Title)
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("running %s: %w", e.ID, err)
		}
		for _, tbl := range res.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
		}
		for _, fig := range res.Figures {
			fmt.Printf("[figure %s: %s — %d curves; use mesfig for CSV]\n\n", fig.ID, fig.Title, len(fig.Curves))
		}
		if csvDir != "" {
			if err := writeCSV(csvDir, e.ID, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(dir, id string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	for i, tbl := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", id, i))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %w", path, err)
		}
		if err := tbl.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", path, err)
		}
	}
	for _, fig := range res.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s.csv", fig.ID))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %w", path, err)
		}
		if err := fig.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", path, err)
		}
	}
	return nil
}
