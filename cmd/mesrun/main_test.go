package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSelectedExperimentWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(true, 1, dir, []string{"E1", "e2"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1_table0.csv", "E2_table0.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(true, 1, "", []string{"NOPE"}); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestRunFigureExperimentCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(true, 1, dir, []string{"F3"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "F3-*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Errorf("want 3 figure CSVs, got %v", matches)
	}
}
