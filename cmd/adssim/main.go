// Command adssim demonstrates sketch-based closeness similarity (Section 7
// of the paper): it builds all-distances sketches over a synthetic social
// network and compares sketch estimates of sim(u,v) against exact values
// for a few node pairs.
//
// Usage:
//
//	adssim [-n NODES] [-k SKETCH] [-pairs N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/ads"
	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 500, "graph size (preferential attachment)")
	k := flag.Int("k", 16, "bottom-k sketch parameter")
	pairs := flag.Int("pairs", 10, "node pairs to evaluate")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()

	if err := run(*n, *k, *pairs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "adssim:", err)
		os.Exit(1)
	}
}

func run(n, k, pairs int, seed int64) error {
	g, err := graph.PreferentialAttachment(n, 3, seed)
	if err != nil {
		return err
	}
	sketches, err := ads.Build(g, k, sampling.NewSeedHash(uint64(seed)))
	if err != nil {
		return err
	}
	var size stats.Welford
	for _, s := range sketches {
		size.Add(float64(len(s.Entries)))
	}
	fmt.Printf("graph: %d nodes; sketches: k=%d, mean size %.1f entries\n\n", n, k, size.Mean())
	fmt.Printf("%-12s  %-10s  %-10s  %-8s\n", "pair", "exact", "estimate", "rel.err")

	rng := rand.New(rand.NewSource(seed + 1))
	var meter stats.ErrorMeter
	for i := 0; i < pairs; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		exact := ads.ExactSimilarity(g, u, v, ads.AlphaInverse)
		est := ads.EstimateSimilarity(sketches[u], sketches[v], ads.AlphaInverse)
		meter.Add(est, exact)
		rel := 0.0
		if exact != 0 {
			rel = (est - exact) / exact
		}
		fmt.Printf("(%4d,%4d)  %-10.4f  %-10.4f  %+.2f%%\n", u, v, exact, est, 100*rel)
	}
	fmt.Printf("\nNRMSE over %d pairs: %.4f\n", pairs, meter.NRMSE())
	return nil
}
