package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(80, 4, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadGraph(t *testing.T) {
	if err := run(2, 4, 1, 1); err == nil {
		t.Error("n ≤ m should fail")
	}
}
