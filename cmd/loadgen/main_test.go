package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/server"
)

func TestRunVerifiesAgainstInProcessServer(t *testing.T) {
	eng, err := engine.New(engine.Config{Instances: 2, K: 64, Shards: 8, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(eng, server.Config{SubscribeDebounce: 10 * time.Millisecond}))
	defer ts.Close()

	o := options{
		addr:        ts.URL,
		updates:     5000,
		batch:       256,
		streams:     2,
		instances:   2,
		subscribers: 3,
		query:       "func=rg&p=1&estimator=lstar",
		verify:      true,
		timeout:     30 * time.Second,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Ingests; got != uint64(o.updates) {
		t.Fatalf("engine ingested %d, want %d", got, o.updates)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if err := run(options{updates: -1, batch: 1, streams: 1, instances: 1}); err == nil {
		t.Fatal("negative -updates accepted")
	}
	if err := run(options{updates: 1, batch: 0, streams: 1, instances: 1}); err == nil {
		t.Fatal("zero -batch accepted")
	}
	if err := run(options{updates: 1, batch: 1, streams: 1, instances: 1, faultProfile: "bogus"}); err == nil {
		t.Fatal("malformed -fault-profile accepted")
	}
}
