// Command loadgen drives a running monestd through the streaming wire:
// it pours synthetic updates into POST /v1/stream over concurrent binary
// connections, holds SSE subscribers open on GET /v1/subscribe, and — with
// -verify — asserts that the estimate the daemon pushes equals what POST
// /v1/query answers at the same engine version. The CI e2e job builds it
// and points it at a freshly booted daemon; exit status 0 means the whole
// wire round-tripped.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-updates 100000] [-batch 256]
//	        [-streams 2] [-instances 2] [-subscribers 4]
//	        [-query "func=rg&p=1&estimator=lstar"] [-verify]
//	        [-timeout 30s]
//
// Updates are deterministic: keys and weights derive from the update
// index, so repeated runs against a fresh daemon build identical sketches.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/streamclient"
)

type options struct {
	addr        string
	updates     int
	batch       int
	streams     int
	instances   int
	subscribers int
	query       string
	verify      bool
	timeout     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "monestd base URL")
	flag.IntVar(&o.updates, "updates", 100000, "total updates to stream")
	flag.IntVar(&o.batch, "batch", 256, "updates per binary frame")
	flag.IntVar(&o.streams, "streams", 2, "concurrent /v1/stream connections")
	flag.IntVar(&o.instances, "instances", 2, "instance count updates are spread over (must be <= daemon's)")
	flag.IntVar(&o.subscribers, "subscribers", 4, "concurrent /v1/subscribe connections")
	flag.StringVar(&o.query, "query", "func=rg&p=1&estimator=lstar", "subscribe query string")
	flag.BoolVar(&o.verify, "verify", false, "assert the pushed estimate matches POST /v1/query at the same version")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "overall deadline")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// synthUpdate is the deterministic update for global index i: a splitmix64
// of the index picks the key so repeated runs are reproducible and the key
// space is well spread across shards.
func synthUpdate(i, instances int) engine.Update {
	z := uint64(i)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return engine.Update{
		Instance: i % instances,
		Key:      z ^ (z >> 31),
		Weight:   float64(i%97) + 0.5,
	}
}

func run(o options) error {
	if o.updates <= 0 || o.batch <= 0 || o.streams <= 0 || o.instances <= 0 {
		return fmt.Errorf("-updates, -batch, -streams, -instances must be positive")
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	client := &http.Client{}

	// Subscribers go up first so every push from the ingest run is theirs
	// to observe. Each remembers its latest push.
	type subState struct {
		sub  *streamclient.Subscription
		last atomic.Pointer[streamclient.Push]
		done chan struct{}
	}
	subs := make([]*subState, 0, o.subscribers)
	for i := 0; i < o.subscribers; i++ {
		sub, err := streamclient.Subscribe(ctx, client, o.addr, o.query)
		if err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
		st := &subState{sub: sub, done: make(chan struct{})}
		subs = append(subs, st)
		go func() {
			defer close(st.done)
			for {
				p, err := st.sub.NextPush()
				if err != nil {
					return
				}
				st.last.Store(&p)
			}
		}()
	}
	defer func() {
		for _, st := range subs {
			st.sub.Close()
		}
	}()

	// Fan the update range over the stream connections.
	per := (o.updates + o.streams - 1) / o.streams
	var wg sync.WaitGroup
	var streamed atomic.Int64
	errc := make(chan error, o.streams)
	start := time.Now()
	for s := 0; s < o.streams; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > o.updates {
			hi = o.updates
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			st, err := streamclient.OpenStream(ctx, client, o.addr)
			if err != nil {
				errc <- err
				return
			}
			batch := make([]engine.Update, 0, o.batch)
			for i := lo; i < hi; i++ {
				batch = append(batch, synthUpdate(i, o.instances))
				if len(batch) == o.batch {
					if err := st.Send(batch); err != nil {
						st.Close()
						errc <- err
						return
					}
					streamed.Add(int64(len(batch)))
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				if err := st.Send(batch); err != nil {
					st.Close()
					errc <- err
					return
				}
				streamed.Add(int64(len(batch)))
			}
			if _, err := st.Close(); err != nil {
				errc <- err
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return fmt.Errorf("stream: %w", err)
	default:
	}
	rate := float64(streamed.Load()) / elapsed.Seconds()
	fmt.Printf("streamed %d updates in %v over %d connections (%.0f updates/s)\n",
		streamed.Load(), elapsed.Round(time.Millisecond), o.streams, rate)

	if o.subscribers == 0 {
		return nil
	}

	// All ingest is acknowledged (Close returned the server summary), so
	// the daemon's version is final. Wait for every subscriber's latest
	// push to reach it, then — under -verify — replay the same query over
	// POST /v1/query and demand byte-equal results at that version.
	finalVersion, queried, err := queryOnce(ctx, client, o.addr, o.query)
	if err != nil {
		return err
	}
	deadline := time.NewTimer(o.timeout)
	defer deadline.Stop()
	for i, st := range subs {
		for {
			if p := st.last.Load(); p != nil && p.Version >= finalVersion {
				break
			}
			select {
			case <-st.done:
				return fmt.Errorf("subscriber %d closed before reaching version %d", i, finalVersion)
			case <-deadline.C:
				return fmt.Errorf("subscriber %d never saw version %d", i, finalVersion)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	fmt.Printf("%d subscribers caught up to version %d\n", len(subs), finalVersion)

	if !o.verify {
		return nil
	}
	for i, st := range subs {
		p := st.last.Load()
		if p.Version != finalVersion {
			// The daemon mutated after our query (another writer?): refuse
			// to compare across versions rather than report a false pass.
			return fmt.Errorf("subscriber %d is at version %d, query answered %d — is another writer active?",
				i, p.Version, finalVersion)
		}
		if len(p.Results) != len(queried) {
			return fmt.Errorf("subscriber %d push has %d results, query %d", i, len(p.Results), len(queried))
		}
		for j := range queried {
			if !jsonEqual(p.Results[j], queried[j]) {
				return fmt.Errorf("subscriber %d result %d: push %s != query %s", i, j, p.Results[j], queried[j])
			}
		}
	}
	fmt.Printf("verified: pushed estimates equal POST /v1/query at version %d\n", finalVersion)
	return nil
}

// queryOnce answers the subscribe query over POST /v1/query, translating
// the URL-parameter form into one batched query object.
func queryOnce(ctx context.Context, client *http.Client, addr, rawQuery string) (uint64, []json.RawMessage, error) {
	spec := map[string]any{}
	for _, kv := range strings.Split(rawQuery, "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "p", "c":
			var f float64
			if _, err := fmt.Sscan(v, &f); err != nil {
				return 0, nil, fmt.Errorf("query param %s=%q: %w", k, v, err)
			}
			spec[k] = f
		case "keys", "ids":
			spec[k] = strings.Split(v, ",")
		case "queries":
			return 0, nil, fmt.Errorf("-verify supports parameter-form queries only, not queries=[...]")
		default:
			spec[k] = v
		}
	}
	body, _ := json.Marshal(map[string]any{"queries": []any{spec}})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(addr, "/")+"/v1/query", strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Version uint64            `json:"version"`
		Results []json.RawMessage `json:"results"`
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, nil, err
	}
	return out.Version, out.Results, nil
}

// jsonEqual compares two JSON documents structurally (key order and
// whitespace insensitive).
func jsonEqual(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return false
	}
	ab, _ := json.Marshal(av)
	bb, _ := json.Marshal(bv)
	return string(ab) == string(bb)
}
