// Command loadgen drives a running monestd through the streaming wire:
// it pours synthetic updates into POST /v1/stream over concurrent binary
// connections, holds SSE subscribers open on GET /v1/subscribe, and — with
// -verify — asserts that the estimate the daemon pushes equals what POST
// /v1/query answers at the same engine version. The CI e2e job builds it
// and points it at a freshly booted daemon; exit status 0 means the whole
// wire round-tripped.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-updates 100000] [-batch 256]
//	        [-streams 2] [-instances 2] [-subscribers 4]
//	        [-query "func=rg&p=1&estimator=lstar"] [-verify]
//	        [-timeout 30s] [-fault-profile "reset=0.01,drop-response=0.005"]
//
// Updates are deterministic: keys and weights derive from the update
// index, so repeated runs against a fresh daemon build identical sketches.
// -updates 0 runs read-only: no ingest, just subscribe + query (+ -verify)
// against whatever the daemon already holds.
//
// -fault-profile injects client-side chaos (internal/fault transport
// faults: latency, connection resets, dropped responses, cut bodies) into
// every request loadgen makes; ingest rides idempotency-keyed streams
// that replay through the faults, so the run still completes exactly.
// The summary reports rate-limit rejections (429s), stream retries,
// deduped frames, and how many query/push responses carried a cluster
// "degraded" block.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/streamclient"
)

type options struct {
	addr         string
	updates      int
	batch        int
	streams      int
	instances    int
	subscribers  int
	query        string
	verify       bool
	timeout      time.Duration
	faultProfile string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "monestd base URL")
	flag.IntVar(&o.updates, "updates", 100000, "total updates to stream")
	flag.IntVar(&o.batch, "batch", 256, "updates per binary frame")
	flag.IntVar(&o.streams, "streams", 2, "concurrent /v1/stream connections")
	flag.IntVar(&o.instances, "instances", 2, "instance count updates are spread over (must be <= daemon's)")
	flag.IntVar(&o.subscribers, "subscribers", 4, "concurrent /v1/subscribe connections")
	flag.StringVar(&o.query, "query", "func=rg&p=1&estimator=lstar", "subscribe query string")
	flag.BoolVar(&o.verify, "verify", false, "assert the pushed estimate matches POST /v1/query at the same version")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "overall deadline")
	flag.StringVar(&o.faultProfile, "fault-profile", "", "internal/fault transport profile, e.g. \"latency=1ms,reset=0.01,drop-response=0.005,seed=1\"")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// synthUpdate is the deterministic update for global index i: a splitmix64
// of the index picks the key so repeated runs are reproducible and the key
// space is well spread across shards.
func synthUpdate(i, instances int) engine.Update {
	z := uint64(i)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return engine.Update{
		Instance: i % instances,
		Key:      z ^ (z >> 31),
		Weight:   float64(i%97) + 0.5,
	}
}

func run(o options) error {
	if o.updates < 0 || o.batch <= 0 || o.streams <= 0 || o.instances <= 0 {
		return fmt.Errorf("-batch, -streams, -instances must be positive and -updates nonnegative")
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	client := &http.Client{}
	var ft *fault.Transport
	if o.faultProfile != "" {
		prof, err := fault.ParseProfile(o.faultProfile)
		if err != nil {
			return fmt.Errorf("-fault-profile: %w", err)
		}
		ft = fault.NewTransport(prof, nil)
		client.Transport = ft
		fmt.Printf("fault profile active: %s\n", o.faultProfile)
	}

	// Subscribers go up first so every push from the ingest run is theirs
	// to observe. Each remembers its latest push.
	type subState struct {
		sub  *streamclient.Subscription
		last atomic.Pointer[streamclient.Push]
		done chan struct{}
	}
	var degradedPushes atomic.Int64
	subs := make([]*subState, 0, o.subscribers)
	for i := 0; i < o.subscribers; i++ {
		sub, err := subscribeRetry(ctx, client, o.addr, o.query)
		if err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
		st := &subState{sub: sub, done: make(chan struct{})}
		subs = append(subs, st)
		go func() {
			defer close(st.done)
			for {
				p, err := st.sub.NextPush()
				if err != nil {
					return
				}
				if len(p.Degraded) > 0 && string(p.Degraded) != "null" {
					degradedPushes.Add(1)
				}
				st.last.Store(&p)
			}
		}()
	}
	defer func() {
		for _, st := range subs {
			st.sub.Close()
		}
	}()

	// Fan the update range over the stream connections; each is one
	// idempotency-keyed Pump, so a 429 or an injected transport fault
	// replays under the same key and every update still lands exactly once.
	if o.updates > 0 {
		per := (o.updates + o.streams - 1) / o.streams
		runNonce := time.Now().UnixNano()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var total streamclient.PumpStats
		errc := make(chan error, o.streams)
		start := time.Now()
		for s := 0; s < o.streams; s++ {
			lo, hi := s*per, (s+1)*per
			if hi > o.updates {
				hi = o.updates
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				key := fmt.Sprintf("loadgen-%d-%d", runNonce, s)
				next := func(frame int) ([]engine.Update, bool) {
					flo := lo + frame*o.batch
					if flo >= hi {
						return nil, false
					}
					fhi := min(flo+o.batch, hi)
					batch := make([]engine.Update, 0, fhi-flo)
					for i := flo; i < fhi; i++ {
						batch = append(batch, synthUpdate(i, o.instances))
					}
					return batch, true
				}
				ps, err := streamclient.Pump(ctx, client, o.addr, key, next, 50)
				mu.Lock()
				total.Frames += ps.Frames
				total.Updates += ps.Updates
				total.SkippedFrames += ps.SkippedFrames
				total.SkippedUpdates += ps.SkippedUpdates
				total.RateLimited += ps.RateLimited
				total.Retries += ps.Retries
				mu.Unlock()
				if err != nil {
					errc <- err
				}
			}(s, lo, hi)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return fmt.Errorf("stream: %w", err)
		default:
		}
		streamed := total.Updates + total.SkippedUpdates
		rate := float64(streamed) / elapsed.Seconds()
		fmt.Printf("streamed %d updates in %v over %d connections (%.0f updates/s)\n",
			streamed, elapsed.Round(time.Millisecond), o.streams, rate)
		fmt.Printf("backpressure: %d rate-limited (429), %d stream retries, %d frames deduped on replay\n",
			total.RateLimited, total.Retries, total.SkippedFrames)
	} else {
		fmt.Println("read-only run (-updates 0): no ingest")
	}
	if ft != nil {
		fs := ft.Stats()
		fmt.Printf("injected faults: %d requests, %d resets, %d dropped responses, %d cut bodies\n",
			fs.Requests, fs.Resets, fs.Dropped, fs.Cut)
	}

	if o.subscribers == 0 {
		return nil
	}

	// All ingest is acknowledged (Close returned the server summary), so
	// the daemon's version is final. Wait for every subscriber's latest
	// push to reach it, then — under -verify — replay the same query over
	// POST /v1/query and demand byte-equal results at that version.
	finalVersion, queried, degradedQuery, err := queryRetry(ctx, client, o.addr, o.query)
	if err != nil {
		return err
	}
	degradedQueries := 0
	if degradedQuery {
		degradedQueries++
	}
	deadline := time.NewTimer(o.timeout)
	defer deadline.Stop()
	for i, st := range subs {
		for {
			if p := st.last.Load(); p != nil && p.Version >= finalVersion {
				break
			}
			select {
			case <-st.done:
				return fmt.Errorf("subscriber %d closed before reaching version %d", i, finalVersion)
			case <-deadline.C:
				return fmt.Errorf("subscriber %d never saw version %d", i, finalVersion)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	fmt.Printf("%d subscribers caught up to version %d\n", len(subs), finalVersion)
	fmt.Printf("degraded reads: %d queries, %d pushes carried a degraded block\n",
		degradedQueries, degradedPushes.Load())

	if !o.verify {
		return nil
	}
	for i, st := range subs {
		p := st.last.Load()
		if p.Version != finalVersion {
			// The daemon mutated after our query (another writer?): refuse
			// to compare across versions rather than report a false pass.
			return fmt.Errorf("subscriber %d is at version %d, query answered %d — is another writer active?",
				i, p.Version, finalVersion)
		}
		if len(p.Results) != len(queried) {
			return fmt.Errorf("subscriber %d push has %d results, query %d", i, len(p.Results), len(queried))
		}
		for j := range queried {
			if !jsonEqual(p.Results[j], queried[j]) {
				return fmt.Errorf("subscriber %d result %d: push %s != query %s", i, j, p.Results[j], queried[j])
			}
		}
	}
	fmt.Printf("verified: pushed estimates equal POST /v1/query at version %d\n", finalVersion)
	return nil
}

// subscribeRetry opens a subscription, absorbing transient (injected or
// real) transport failures with a short backoff.
func subscribeRetry(ctx context.Context, client *http.Client, addr, rawQuery string) (*streamclient.Subscription, error) {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		var sub *streamclient.Subscription
		if sub, err = streamclient.Subscribe(ctx, client, addr, rawQuery); err == nil {
			return sub, nil
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, err
		}
	}
	return nil, err
}

// queryRetry is queryOnce with the same transient-failure tolerance.
func queryRetry(ctx context.Context, client *http.Client, addr, rawQuery string) (uint64, []json.RawMessage, bool, error) {
	var (
		version  uint64
		results  []json.RawMessage
		degraded bool
		err      error
	)
	for attempt := 0; attempt < 8; attempt++ {
		if version, results, degraded, err = queryOnce(ctx, client, addr, rawQuery); err == nil {
			return version, results, degraded, nil
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return 0, nil, false, err
		}
	}
	return 0, nil, false, err
}

// queryOnce answers the subscribe query over POST /v1/query, translating
// the URL-parameter form into one batched query object. The bool reports
// whether the response carried a cluster "degraded" block.
func queryOnce(ctx context.Context, client *http.Client, addr, rawQuery string) (uint64, []json.RawMessage, bool, error) {
	spec := map[string]any{}
	for _, kv := range strings.Split(rawQuery, "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "p", "c":
			var f float64
			if _, err := fmt.Sscan(v, &f); err != nil {
				return 0, nil, false, fmt.Errorf("query param %s=%q: %w", k, v, err)
			}
			spec[k] = f
		case "keys", "ids":
			spec[k] = strings.Split(v, ",")
		case "queries":
			return 0, nil, false, fmt.Errorf("-verify supports parameter-form queries only, not queries=[...]")
		default:
			spec[k] = v
		}
	}
	body, _ := json.Marshal(map[string]any{"queries": []any{spec}})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(addr, "/")+"/v1/query", strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	var out struct {
		Version  uint64            `json:"version"`
		Results  []json.RawMessage `json:"results"`
		Degraded json.RawMessage   `json:"degraded"`
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, false, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, nil, false, err
	}
	degraded := len(out.Degraded) > 0 && string(out.Degraded) != "null"
	return out.Version, out.Results, degraded, nil
}

// jsonEqual compares two JSON documents structurally (key order and
// whitespace insensitive).
func jsonEqual(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return false
	}
	ab, _ := json.Marshal(av)
	bb, _ := json.Marshal(bv)
	return string(ab) == string(bb)
}
