// Command benchtext converts `go test -json` benchmark output — the
// format of the committed BENCH_baseline.json and the CI BENCH_<sha>.json
// artifacts — back into the standard benchmark text format that
// benchstat consumes, so `make benchcmp` can diff any two artifacts:
//
//	benchtext BENCH_baseline.json > baseline.txt
//	benchtext BENCH_head.json > head.txt
//	benchstat baseline.txt head.txt
//
// With no arguments it reads test2json lines from stdin. Only the lines
// benchstat understands are emitted: the goos/goarch/pkg/cpu header and
// benchmark result lines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// event is the subset of test2json's record benchtext needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// resultLine matches a benchmark result: name, iteration count, then at
// least one metric. Bare name announcements ("BenchmarkIngest") carry no
// fields and are skipped — benchstat warns on them.
var resultLine = regexp.MustCompile(`^Benchmark\S+(-\d+)?\s+\d+\s`)

func isBenchText(line string) bool {
	for _, p := range []string{"goos: ", "goarch: ", "pkg: ", "cpu: "} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return resultLine.MatchString(line)
}

func convert(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// A benchmark's name and its result reach test2json as separate
	// Output fragments of one logical line ("BenchmarkX-8 \t" then
	// "  123\t 456 ns/op\n"), so fragments accumulate per package until a
	// newline completes the line. Packages may run in parallel with their
	// events interleaved, so completed lines are buffered per package and
	// emitted grouped at the end — benchstat matches rows by the nearest
	// preceding pkg/goos/cpu header block, which interleaving would
	// scramble.
	pending := make(map[string]string)
	lines := make(map[string][]string)
	var order []string
	collect := func(pkg, frag string) {
		if _, seen := pending[pkg]; !seen {
			order = append(order, pkg)
		}
		buf := pending[pkg] + frag
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if line := buf[:nl]; isBenchText(line) {
				lines[pkg] = append(lines[pkg], line)
			}
			buf = buf[nl+1:]
		}
		pending[pkg] = buf
	}
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. a concatenation of
			// artifacts with plain-text separators).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		collect(ev.Package, ev.Output)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, pkg := range order {
		for _, line := range lines[pkg] {
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		if err := convert(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtext:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtext:", err)
			os.Exit(1)
		}
		err = convert(f, os.Stdout)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtext: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
