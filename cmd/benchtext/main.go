// Command benchtext converts `go test -json` benchmark output — the
// format of the committed BENCH_baseline.json and the CI BENCH_<sha>.json
// artifacts — back into the standard benchmark text format that
// benchstat consumes, so `make benchcmp` can diff any two artifacts:
//
//	benchtext BENCH_baseline.json > baseline.txt
//	benchtext BENCH_head.json > head.txt
//	benchstat baseline.txt head.txt
//
// With no arguments it reads test2json lines from stdin. Only the lines
// benchstat understands are emitted: the goos/goarch/pkg/cpu header and
// benchmark result lines.
//
// -gate turns benchtext into CI's regression gate over the hot-path
// allowlist:
//
//	benchtext -gate -allow 'BenchmarkIngestBatch|...' -max-regress 1.30 \
//	    BENCH_baseline.json BENCH_head.json
//
// It compares ns/op for every allowlisted benchmark (minimum across
// repeated -count samples, the noise-robust statistic) and exits nonzero
// when head/baseline exceeds -max-regress, or when an allowlisted
// benchmark vanished from the head artifact. Benchmarks outside the
// allowlist stay advisory — `make benchcmp` reports them, nothing fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record benchtext needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// resultLine matches a benchmark result: name, iteration count, then at
// least one metric. Bare name announcements ("BenchmarkIngest") carry no
// fields and are skipped — benchstat warns on them.
var resultLine = regexp.MustCompile(`^Benchmark\S+(-\d+)?\s+\d+\s`)

func isBenchText(line string) bool {
	for _, p := range []string{"goos: ", "goarch: ", "pkg: ", "cpu: "} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return resultLine.MatchString(line)
}

// extract gathers benchmark text lines from a test2json stream, grouped
// by package in first-seen order.
func extract(r io.Reader) (order []string, lines map[string][]string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// A benchmark's name and its result reach test2json as separate
	// Output fragments of one logical line ("BenchmarkX-8 \t" then
	// "  123\t 456 ns/op\n"), so fragments accumulate per package until a
	// newline completes the line. Packages may run in parallel with their
	// events interleaved, so completed lines are buffered per package and
	// emitted grouped at the end — benchstat matches rows by the nearest
	// preceding pkg/goos/cpu header block, which interleaving would
	// scramble.
	pending := make(map[string]string)
	lines = make(map[string][]string)
	collect := func(pkg, frag string) {
		if _, seen := pending[pkg]; !seen {
			order = append(order, pkg)
		}
		buf := pending[pkg] + frag
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if line := buf[:nl]; isBenchText(line) {
				lines[pkg] = append(lines[pkg], line)
			}
			buf = buf[nl+1:]
		}
		pending[pkg] = buf
	}
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. a concatenation of
			// artifacts with plain-text separators).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		collect(ev.Package, ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return order, lines, nil
}

func convert(r io.Reader, w io.Writer) error {
	order, lines, err := extract(r)
	if err != nil {
		return err
	}
	for _, pkg := range order {
		for _, line := range lines[pkg] {
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// gmpSuffix is the trailing -N GOMAXPROCS marker go test appends to
// benchmark names ("BenchmarkIngest-16"); stripped so artifacts from
// machines with different core counts compare by logical name.
var gmpSuffix = regexp.MustCompile(`-\d+$`)

// loadNsPerOp parses an artifact into name → minimum ns/op across its
// samples (repeated -count runs of one benchmark produce several result
// lines; the minimum is the least-noisy summary of each).
func loadNsPerOp(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, lines, err := extract(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	best := make(map[string]float64)
	for _, pkgLines := range lines {
		for _, line := range pkgLines {
			if !resultLine.MatchString(line) {
				continue
			}
			fields := strings.Fields(line)
			name := gmpSuffix.ReplaceAllString(fields[0], "")
			for i := 1; i < len(fields); i++ {
				if fields[i] != "ns/op" {
					continue
				}
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op in %q", path, line)
				}
				if cur, ok := best[name]; !ok || v < cur {
					best[name] = v
				}
				break
			}
		}
	}
	return best, nil
}

// gate compares allowlisted benchmarks between two artifacts and reports
// whether any regressed beyond maxRegress. Results are written as a
// table; the returned count is the number of failures.
func gate(w io.Writer, baseline, head map[string]float64, allow *regexp.Regexp, maxRegress float64) int {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if allow.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(w, "gate: allowlist %q matches no baseline benchmark — gating nothing is a misconfiguration\n", allow)
		return 1
	}
	failures := 0
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark (gated)", "base ns/op", "head ns/op", "ratio")
	for _, name := range names {
		base := baseline[name]
		hd, ok := head[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %14.1f %14s %8s  FAIL (missing from head)\n", name, base, "-", "-")
			failures++
			continue
		}
		ratio := math.Inf(1)
		if base > 0 {
			ratio = hd / base
		}
		verdict := "ok"
		if ratio > maxRegress {
			verdict = fmt.Sprintf("FAIL (> %.2fx)", maxRegress)
			failures++
		}
		fmt.Fprintf(w, "%-60s %14.1f %14.1f %7.2fx  %s\n", name, base, hd, ratio, verdict)
	}
	for name := range head {
		if allow.MatchString(name) {
			if _, ok := baseline[name]; !ok {
				fmt.Fprintf(w, "%-60s %14s %14.1f %8s  new (no baseline, advisory)\n", name, "-", head[name], "-")
			}
		}
	}
	return failures
}

func runGate(allowPat string, maxRegress float64, paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("-gate needs exactly two artifacts: baseline head (got %d)", len(paths))
	}
	if maxRegress <= 1 {
		return fmt.Errorf("-max-regress %g must exceed 1", maxRegress)
	}
	allow, err := regexp.Compile(allowPat)
	if err != nil {
		return fmt.Errorf("-allow: %w", err)
	}
	baseline, err := loadNsPerOp(paths[0])
	if err != nil {
		return err
	}
	head, err := loadNsPerOp(paths[1])
	if err != nil {
		return err
	}
	if n := gate(os.Stdout, baseline, head, allow, maxRegress); n > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed beyond %.2fx (baseline %s, head %s)", n, maxRegress, paths[0], paths[1])
	}
	fmt.Println("gate: all gated benchmarks within bound")
	return nil
}

func main() {
	gateMode := flag.Bool("gate", false, "compare two artifacts and fail on allowlisted regressions")
	allow := flag.String("allow", "", "regexp of benchmark names the gate enforces (-gate only)")
	maxRegress := flag.Float64("max-regress", 1.30, "head/baseline ns/op ratio above which the gate fails (-gate only)")
	flag.Parse()

	if *gateMode {
		if err := runGate(*allow, *maxRegress, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchtext:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		if err := convert(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtext:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtext:", err)
			os.Exit(1)
		}
		err = convert(f, os.Stdout)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtext: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
