package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestConvertExtractsBenchLines(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"repro/internal/engine"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"cpu: Intel(R) Xeon(R)\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"BenchmarkIngest\n"}`,
		// Name and result split across fragments, interleaved with another
		// package's fragment — the test2json shape that must reassemble.
		`{"Action":"output","Package":"repro/internal/engine","Output":"BenchmarkIngest-8   \t"}`,
		`{"Action":"output","Package":"repro/internal/server","Output":"BenchmarkQueryCached-8 \t"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"  123456\t      9876 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Package":"repro/internal/server","Output":"  999\t      11836 ns/op\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"PASS\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"repro/internal/engine"}`,
	}, "\n")
	var out strings.Builder
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"goos: linux\n", "cpu: Intel(R) Xeon(R)\n", "9876 ns/op", "11836 ns/op"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Bare name announcements and PASS lines would make benchstat warn.
	if strings.Contains(got, "BenchmarkIngest\n") {
		t.Errorf("bare benchmark name leaked:\n%s", got)
	}
	if strings.Contains(got, "PASS") {
		t.Errorf("PASS line leaked:\n%s", got)
	}
	// Interleaved packages must come out grouped (benchstat matches rows
	// by the nearest preceding header block): all engine lines before the
	// server line, since engine appeared first.
	if ei, si := strings.Index(got, "9876 ns/op"), strings.Index(got, "11836 ns/op"); ei > si {
		t.Errorf("package output interleaved (engine at %d, server at %d):\n%s", ei, si, got)
	}
}

// artifact writes a minimal test2json artifact with one result line per
// sample and returns its path.
func artifact(t *testing.T, name string, results map[string][]float64) string {
	t.Helper()
	var b strings.Builder
	for bench, samples := range results {
		for _, ns := range samples {
			b.WriteString(`{"Action":"output","Package":"repro/internal/engine","Output":"`)
			b.WriteString(bench)
			b.WriteString(`-8   \t  100\t      `)
			b.WriteString(strconv.FormatFloat(ns, 'f', -1, 64))
			b.WriteString(` ns/op\n"}` + "\n")
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNsPerOpTakesMinAndStripsGOMAXPROCS(t *testing.T) {
	path := artifact(t, "a.json", map[string][]float64{
		"BenchmarkIngestBatch": {300, 120, 250},
	})
	got, err := loadNsPerOp(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkIngestBatch"] != 120 {
		t.Fatalf("min ns/op = %g, want 120 (GOMAXPROCS suffix stripped); map %v", got["BenchmarkIngestBatch"], got)
	}
}

func TestGatePassesWithinBound(t *testing.T) {
	base := map[string]float64{"BenchmarkIngestBatch": 100, "BenchmarkOther": 100}
	head := map[string]float64{"BenchmarkIngestBatch": 125, "BenchmarkOther": 900}
	var out strings.Builder
	// Other regressed 9x but is not allowlisted: advisory only.
	if n := gate(&out, base, head, regexp.MustCompile(`^BenchmarkIngestBatch$`), 1.30); n != 0 {
		t.Fatalf("gate failed within bound:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := map[string]float64{"BenchmarkIngestBatch": 100}
	head := map[string]float64{"BenchmarkIngestBatch": 140}
	var out strings.Builder
	if n := gate(&out, base, head, regexp.MustCompile(`^BenchmarkIngestBatch$`), 1.30); n != 1 {
		t.Fatalf("gate passed a 1.4x regression:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmarkAndEmptyAllowlist(t *testing.T) {
	base := map[string]float64{"BenchmarkIngestBatch": 100}
	var out strings.Builder
	if n := gate(&out, base, map[string]float64{}, regexp.MustCompile(`^BenchmarkIngestBatch$`), 1.30); n != 1 {
		t.Fatal("gate passed though the gated benchmark vanished from head")
	}
	if n := gate(&out, base, base, regexp.MustCompile(`^BenchmarkNope$`), 1.30); n != 1 {
		t.Fatal("gate passed an allowlist matching nothing")
	}
}

func TestRunGateEndToEnd(t *testing.T) {
	base := artifact(t, "base.json", map[string][]float64{"BenchmarkIngestBatch": {100}})
	headOK := artifact(t, "ok.json", map[string][]float64{"BenchmarkIngestBatch": {104, 99}})
	headBad := artifact(t, "bad.json", map[string][]float64{"BenchmarkIngestBatch": {200, 180}})
	if err := runGate(`^BenchmarkIngestBatch$`, 1.30, []string{base, headOK}); err != nil {
		t.Fatalf("in-bound head failed: %v", err)
	}
	if err := runGate(`^BenchmarkIngestBatch$`, 1.30, []string{base, headBad}); err == nil {
		t.Fatal("1.8x regression passed the gate")
	}
	if err := runGate(`^BenchmarkIngestBatch$`, 1.30, []string{base}); err == nil {
		t.Fatal("one artifact accepted")
	}
	if err := runGate(`^BenchmarkIngestBatch$`, 0.9, []string{base, headOK}); err == nil {
		t.Fatal("max-regress <= 1 accepted")
	}
}
