package main

import (
	"strings"
	"testing"
)

func TestConvertExtractsBenchLines(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"repro/internal/engine"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"cpu: Intel(R) Xeon(R)\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"BenchmarkIngest\n"}`,
		// Name and result split across fragments, interleaved with another
		// package's fragment — the test2json shape that must reassemble.
		`{"Action":"output","Package":"repro/internal/engine","Output":"BenchmarkIngest-8   \t"}`,
		`{"Action":"output","Package":"repro/internal/server","Output":"BenchmarkQueryCached-8 \t"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"  123456\t      9876 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Package":"repro/internal/server","Output":"  999\t      11836 ns/op\n"}`,
		`{"Action":"output","Package":"repro/internal/engine","Output":"PASS\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"repro/internal/engine"}`,
	}, "\n")
	var out strings.Builder
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"goos: linux\n", "cpu: Intel(R) Xeon(R)\n", "9876 ns/op", "11836 ns/op"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Bare name announcements and PASS lines would make benchstat warn.
	if strings.Contains(got, "BenchmarkIngest\n") {
		t.Errorf("bare benchmark name leaked:\n%s", got)
	}
	if strings.Contains(got, "PASS") {
		t.Errorf("PASS line leaked:\n%s", got)
	}
	// Interleaved packages must come out grouped (benchstat matches rows
	// by the nearest preceding header block): all engine lines before the
	// server line, since engine appeared first.
	if ei, si := strings.Index(got, "9876 ns/op"), strings.Index(got, "11836 ns/op"); ei > si {
		t.Errorf("package output interleaved (engine at %d, server at %d):\n%s", ei, si, got)
	}
}
