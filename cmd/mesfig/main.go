// Command mesfig emits the paper's figure series (Examples 3 and 4) as CSV
// files, one per panel, suitable for plotting with any tool.
//
// Usage:
//
//	mesfig [-out DIR] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "figures", "output directory for CSV files")
	quick := flag.Bool("quick", false, "coarser sampling grid")
	flag.Parse()

	if err := run(*out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "mesfig:", err)
		os.Exit(1)
	}
}

func run(dir string, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	cfg := experiments.Config{Quick: quick}
	for _, id := range []string{"F3", "F4"} {
		exp, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		res, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("running %s: %w", id, err)
		}
		for _, fig := range res.Figures {
			path := filepath.Join(dir, fig.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("creating %s: %w", path, err)
			}
			if err := fig.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", path, err)
			}
			fmt.Printf("wrote %s (%d curves)\n", path, len(fig.Curves))
		}
	}
	return nil
}
