package main

import (
	"path/filepath"
	"testing"
)

func TestRunWritesAllPanels(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "F*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 6 { // 3 panels × {F3, F4}
		t.Errorf("want 6 panel CSVs, got %d: %v", len(matches), matches)
	}
}
